#include "dram_spec.hh"

#include <cmath>

#include "common/logging.hh"

namespace nuat {

namespace {

/**
 * The paper's device: a default-constructed TimingParams/DramGeometry
 * *is* this table (dram_spec_test pins that), so every pre-existing
 * DDR3 run — goldens included — is bit-identical to the preset path.
 */
DramSpec
ddr3_1600()
{
    DramSpec s{};
    s.name = "ddr3-1600";
    s.generation = DramGen::kDdr3_1600;
    s.busMhz = 800.0;
    s.cpuPerMemCycle = 4; // 3.2 GHz core (Table 3)
    s.geometry = DramGeometry{};
    s.timing = TimingParams{};
    s.ns = {Nanoseconds{15.0}, Nanoseconds{37.5}, Nanoseconds{15.0},
            Nanoseconds{160.0}, Nanoseconds{7800.0}};
    return s;
}

/** DDR4-2400: 1200 MHz bus, 16 banks in 4 groups, 8 Gb-class tRFC. */
DramSpec
ddr4_2400()
{
    DramSpec s{};
    s.name = "ddr4-2400";
    s.generation = DramGen::kDdr4_2400;
    s.busMhz = 1200.0;
    s.cpuPerMemCycle = 3; // 3.6 GHz core

    s.geometry = DramGeometry{};
    s.geometry.banks = 16;
    s.geometry.bankGroups = 4;
    s.geometry.rows = 16384;

    TimingParams &t = s.timing;
    t.tRCD = 17; // 14.16 ns
    t.tRAS = 39; // 32 ns
    t.tRP = 17;  // 14.16 ns
    t.tRC = 56;  // tRAS + tRP
    t.tCL = 17;
    t.tCWL = 12;
    t.tBL = 4;    // BL8
    t.tCCD = 4;   // tCCD_S
    t.tRRD = 4;   // tRRD_S, 3.3 ns
    t.tFAW = 26;  // 21 ns
    t.tCCD_L = 6; // 5 ns
    t.tRRD_L = 6; // 4.9 ns
    t.tWTR = 9;   // tWTR_L, 7.5 ns
    t.tRTW = 2;
    t.tRTP = 9; // 7.5 ns
    t.tWR = 18; // 15 ns
    t.tRTRS = 2;
    t.tRFC = 420;   // 350 ns (8 Gb)
    t.tREFI = 4680; // 3.9 us per row group (16K rows in 64 ms)
    t.tRFCpb = 192; // 160 ns
    t.tREFSBRD = 0; // DDR4 REFsb has no same-rank spacing constraint
    t.refreshMode = RefreshMode::kAllBank;
    t.maxRefreshSlack = 600000; // 0.5 ms at 0.833 ns/cycle

    s.ns = {Nanoseconds{14.16}, Nanoseconds{32.0}, Nanoseconds{14.16},
            Nanoseconds{350.0}, Nanoseconds{3900.0}};
    return s;
}

/**
 * DDR5-4800: 2400 MHz bus, 32 banks in 8 groups, same-bank refresh by
 * default (the generation this PR exists to answer questions about).
 */
DramSpec
ddr5_4800()
{
    DramSpec s{};
    s.name = "ddr5-4800";
    s.generation = DramGen::kDdr5_4800;
    s.busMhz = 2400.0;
    s.cpuPerMemCycle = 2; // 4.8 GHz core

    s.geometry = DramGeometry{};
    s.geometry.banks = 32;
    s.geometry.bankGroups = 8;
    s.geometry.rows = 16384;

    TimingParams &t = s.timing;
    t.tRCD = 40; // 16.666 ns (4800B bin)
    t.tRAS = 77; // 32 ns
    t.tRP = 40;  // 16.666 ns
    t.tRC = 117; // tRAS + tRP
    t.tCL = 40;
    t.tCWL = 38;
    t.tBL = 8;     // BL16
    t.tCCD = 8;    // tCCD_S, 8 tCK
    t.tRRD = 8;    // tRRD_S
    t.tFAW = 32;   // 13.333 ns
    t.tCCD_L = 12; // 5 ns
    t.tRRD_L = 12; // 5 ns
    t.tWTR = 24;   // tWTR_L, 10 ns
    t.tRTW = 2;
    t.tRTP = 18; // 7.5 ns
    t.tWR = 72;  // 30 ns
    t.tRTRS = 2;
    t.tRFC = 708;    // 295 ns (16 Gb)
    t.tREFI = 9360;  // 3.9 us per row group (16K rows in 64 ms)
    t.tRFCpb = 312;  // tRFCsb, 130 ns
    t.tREFSBRD = 72; // 30 ns between REFsb to the same rank
    t.refreshMode = RefreshMode::kPerBank;
    t.maxRefreshSlack = 1200000; // 0.5 ms at 0.417 ns/cycle

    s.ns = {Nanoseconds{16.666}, Nanoseconds{32.0}, Nanoseconds{16.666},
            Nanoseconds{295.0}, Nanoseconds{3900.0}};
    return s;
}

} // namespace

const DramSpec *
DramSpec::allPresets()
{
    static const DramSpec presets[kNumDramGens] = {ddr3_1600(),
                                                   ddr4_2400(),
                                                   ddr5_4800()};
    return presets;
}

const DramSpec &
DramSpec::preset(DramGen gen)
{
    const auto idx = static_cast<unsigned>(gen);
    nuat_assert(idx < kNumDramGens);
    const DramSpec &s = allPresets()[idx];
    nuat_assert(s.generation == gen, "(preset table out of order)");
    return s;
}

const DramSpec *
DramSpec::byName(std::string_view name)
{
    for (unsigned i = 0; i < kNumDramGens; ++i) {
        if (name == allPresets()[i].name)
            return &allPresets()[i];
    }
    return nullptr;
}

const char *
dramGenName(DramGen gen)
{
    switch (gen) {
      case DramGen::kDdr3_1600:
        return "DDR3-1600";
      case DramGen::kDdr4_2400:
        return "DDR4-2400";
      case DramGen::kDdr5_4800:
        return "DDR5-4800";
    }
    return "?";
}

void
DramSpec::validate() const
{
    nuat_assert(name != nullptr && busMhz > 0.0 && cpuPerMemCycle > 0);
    geometry.validate();
    timing.validate();

    // The cycle columns must be exactly what the datasheet anchors
    // round to at this spec's own clock — a preset edited on one side
    // only fails here, not in some downstream timing drift.
    const Clock clk = clock();
    nuat_assert(clk.toCyclesCeil(ns.trcd) == timing.tRCD,
                "(tRCD cycles disagree with the ns anchor)");
    nuat_assert(clk.toCyclesCeil(ns.tras) == timing.tRAS,
                "(tRAS cycles disagree with the ns anchor)");
    nuat_assert(clk.toCyclesCeil(ns.trp) == timing.tRP,
                "(tRP cycles disagree with the ns anchor)");
    nuat_assert(clk.toCyclesCeil(ns.trfc) == timing.tRFC,
                "(tRFC cycles disagree with the ns anchor)");
    nuat_assert(clk.toCyclesCeil(ns.trefi) == timing.tREFI,
                "(tREFI cycles disagree with the ns anchor)");

    // One full rotation of the refresh counter must take one 64 ms
    // retention period (paper Sec. 4) — PBR's slice widths and the
    // charge model's decay horizon both assume it.
    const Nanoseconds rotation =
        clk.toNs(timing.tREFI) * static_cast<double>(geometry.rows);
    nuat_assert(std::abs(rotation.value() - 64e6) < 64e6 * 0.02,
                "(refresh rotation %f ms != 64 ms retention)",
                rotation.value() / 1e6);
}

} // namespace nuat
