/**
 * @file
 * IDD-based DRAM energy estimation (after the Micron / Rambus power
 * models the paper's charge parameters come from [21, 28]).
 *
 * Energy is decomposed the standard way:
 *   - activate/precharge pairs: (IDD0 - IDD3N) * tRC_effective * VDD,
 *     where NUAT's derated activations genuinely shorten the restore
 *     phase (the per-reduction ACT histogram the device keeps makes
 *     this exact);
 *   - read / write bursts: (IDD4R/W - IDD3N) * tBL * VDD;
 *   - refresh: (IDD5 - IDD2N) * tRFC * VDD per REF;
 *   - background: IDD3N/IDD2N standby, apportioned by bank-active
 *     time (approximated from the command counts).
 */

#ifndef NUAT_DRAM_POWER_MODEL_HH
#define NUAT_DRAM_POWER_MODEL_HH

#include "common/types.hh"
#include "dram_device.hh"
#include "timing_params.hh"

namespace nuat {

/** IDD current specs [mA] (DDR3-1600, 2 Gb class defaults). */
struct IddParams
{
    double vdd = 1.5;     //!< supply [V]
    double idd0 = 95.0;   //!< one-bank ACT-PRE cycling
    double idd2n = 42.0;  //!< precharge standby
    double idd3n = 45.0;  //!< active standby
    double idd4r = 180.0; //!< burst read
    double idd4w = 185.0; //!< burst write
    double idd5 = 215.0;  //!< burst refresh
};

/** Energy decomposition of one run [nJ]. */
struct EnergyBreakdown
{
    double actPre = 0.0;
    double read = 0.0;
    double write = 0.0;
    double refresh = 0.0;
    double background = 0.0;

    /** Total energy [nJ]. */
    double total() const
    {
        return actPre + read + write + refresh + background;
    }

    /** Average power [mW] over @p elapsed. */
    double
    avgPowerMw(Nanoseconds elapsed) const
    {
        return elapsed.value() > 0.0 ? total() / elapsed.value() * 1e3
                                     : 0.0;
    }

    /** Energy saved on activations by charge derating [nJ]. */
    double deratingSavings = 0.0;
};

/** Estimates channel energy from device counters. */
class DramPowerModel
{
  public:
    /**
     * @param tp    the timing parameters the counters ran under
     * @param clock bus clock (cycle -> ns)
     * @param idd   current specs
     */
    DramPowerModel(const TimingParams &tp, const Clock &clock = kMemClock,
                   const IddParams &idd = IddParams{});

    /**
     * Decompose the energy of a run.
     * @param counters device command counts (incl. the per-reduction
     *                 ACT histogram)
     * @param elapsed  run length [cycles]
     */
    EnergyBreakdown estimate(const DeviceCounters &counters,
                             Cycle elapsed) const;

    /** Energy of one ACT/PRE pair at @p trc_cycles [nJ]. */
    double actPreEnergyNj(Cycle trc_cycles) const;

    /** Energy of one read burst [nJ]. */
    double readEnergyNj() const;

    /** Energy of one write burst [nJ]. */
    double writeEnergyNj() const;

    /** Energy of one REF command [nJ]. */
    double refreshEnergyNj() const;

  private:
    TimingParams tp_;
    Clock clock_;
    IddParams idd_;
};

} // namespace nuat

#endif // NUAT_DRAM_POWER_MODEL_HH
