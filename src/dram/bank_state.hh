/**
 * @file
 * Per-bank DRAM state machine.
 *
 * The bank tracks its open row and, for every command class, the
 * earliest cycle at which that command may legally issue.  Timestamps
 * are updated according to the DDR3 constraint graph:
 *
 *   ACT   -> RD/WR after tRCD; PRE after tRAS; next ACT after tRC
 *   RD    -> PRE after tRTP
 *   WR    -> PRE after tCWL + tBL + tWR (write recovery)
 *   PRE   -> ACT after tRP
 *   RDA/WRA fold the PRE in at its earliest legal point.
 *
 * tRCD / tRAS / tRC are *per activation*: the effective values are the
 * ones carried by the ACT command (charge-derated for NUAT, nominal for
 * baselines).
 */

#ifndef NUAT_DRAM_BANK_STATE_HH
#define NUAT_DRAM_BANK_STATE_HH

#include "charge/timing_derate.hh"
#include "common/types.hh"
#include "timing_params.hh"

namespace nuat {

/** Timing state of one DRAM bank. */
class BankState
{
  public:
    /** Row currently open, or kNoRow when (being) precharged. */
    RowId openRow() const { return openRow_; }

    /** True when no row is open (precharged or precharging). */
    bool isClosed() const { return openRow_ == kNoRow; }

    /** True when the bank is fully precharged at @p now (REF-ready). */
    bool prechargedAt(Cycle now) const
    {
        return isClosed() && now >= prechargedAt_;
    }

    /** Earliest cycle an ACT may issue. */
    Cycle actAllowedAt() const { return actAllowedAt_; }

    /** Earliest cycle a column read may issue (bank-local only). */
    Cycle rdAllowedAt() const { return rdAllowedAt_; }

    /** Earliest cycle a column write may issue (bank-local only). */
    Cycle wrAllowedAt() const { return wrAllowedAt_; }

    /** Earliest cycle a PRE may issue. */
    Cycle preAllowedAt() const { return preAllowedAt_; }

    /** Cycle of the activation that opened the current row. */
    Cycle lastActAt() const { return lastActAt_; }

    /** Effective timing of the current activation. */
    const RowTiming &actTiming() const { return actTiming_; }

    /** Apply an ACT at @p now with effective timing @p timing. */
    void onAct(Cycle now, RowId row, const RowTiming &timing);

    /** Apply a column read (no auto-precharge) at @p now. */
    void onRead(Cycle now, const TimingParams &tp);

    /** Apply a column write (no auto-precharge) at @p now. */
    void onWrite(Cycle now, const TimingParams &tp);

    /** Apply an explicit PRE at @p now. */
    void onPre(Cycle now, const TimingParams &tp);

    /** Apply a column read with auto-precharge at @p now. */
    void onReadAp(Cycle now, const TimingParams &tp);

    /** Apply a column write with auto-precharge at @p now. */
    void onWriteAp(Cycle now, const TimingParams &tp);

    /** Apply a refresh that completes at @p done_at. */
    void onRefresh(Cycle done_at);

  private:
    RowId openRow_ = kNoRow;
    Cycle actAllowedAt_ = 0;
    Cycle rdAllowedAt_ = 0;
    Cycle wrAllowedAt_ = 0;
    Cycle preAllowedAt_ = 0;
    Cycle prechargedAt_ = 0; //!< when the last precharge completes
    Cycle lastActAt_ = 0;
    RowTiming actTiming_{0, 0, 0};
};

} // namespace nuat

#endif // NUAT_DRAM_BANK_STATE_HH
