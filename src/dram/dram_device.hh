/**
 * @file
 * Cycle-level DDR3 device model.
 *
 * The device accepts one command per bus cycle, enforces the full DDR3
 * constraint graph (bank timing via BankState, rank-level tRRD / tFAW /
 * tRFC, channel-level column/data-bus interleaving) and — uniquely to
 * this reproduction — carries the charge-model *ground truth*: every
 * activation's requested timing is checked against the true minimum
 * timing the row's remaining cell charge allows.  A controller bug that
 * would corrupt data on real silicon is therefore a panic here, which is
 * how the test suite proves PBR's estimates are always safe.
 */

#ifndef NUAT_DRAM_DRAM_DEVICE_HH
#define NUAT_DRAM_DRAM_DEVICE_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "bank_state.hh"
#include "charge/timing_derate.hh"
#include "command.hh"
#include "command_observer.hh"
#include "common/thread_annotations.hh"
#include "common/types.hh"
#include "common/units.hh"
#include "refresh_engine.hh"
#include "timing_params.hh"

namespace nuat {

class FaultModel;

/** Per-rank state beyond the individual banks. */
class RankState
{
  public:
    /**
     * @param rows      rows per bank
     * @param tp        timing parameters (incl. refreshMode)
     * @param num_banks banks in this rank
     * @param geom      geometry (bank-group dimension)
     */
    RankState(std::uint32_t rows, const TimingParams &tp,
              const DramGeometry &geom);

    /** Per-bank state, indexed by bank id. */
    std::vector<BankState> banks;

    /**
     * Refresh counter / schedule / ground truth.  One rank-wide engine
     * in all-bank mode; one engine per bank under per-bank refresh,
     * phase-staggered so the REFsb deadlines spread over the interval.
     */
    std::vector<RefreshEngine> engines;

    /** The engine that owns @p bank's rows. */
    const RefreshEngine &engineFor(BankId bank) const
    {
        return engines[engines.size() == 1 ? 0 : bank.value()];
    }
    RefreshEngine &engineFor(BankId bank)
    {
        return engines[engines.size() == 1 ? 0 : bank.value()];
    }

    /** Earliest cycle the next ACT may issue (tRRD). */
    Cycle actAllowedAt = 0;

    /** End of the in-flight REF's tRFC window. */
    Cycle refBusyUntil = 0;

    /** End of the in-flight REFsb's tRFCpb window, per bank. */
    std::vector<Cycle> refsbBusyUntil;

    /** Issue time of the last REFsb to this rank (tREFSBRD spacing). */
    Cycle lastRefsbAt = kNeverCycle;

    /** Earliest next ACT per bank group (tRRD_L). */
    std::vector<Cycle> groupActAllowedAt;

    /** Earliest next read / write per bank group (tCCD_L). */
    std::vector<Cycle> groupRdIssueOkAt;
    std::vector<Cycle> groupWrIssueOkAt;

    /** Issue times of recent ACTs, for the four-activate window. */
    std::deque<Cycle> actWindow;

    /** True when an ACT at @p now would violate tFAW. */
    bool fawBlocked(Cycle now, const TimingParams &tp) const;

    /** Record an ACT at @p now for tRRD / tFAW accounting. */
    void recordAct(Cycle now, const TimingParams &tp);
};

/** Command counters kept by the device. */
struct DeviceCounters
{
    std::uint64_t acts = 0;
    std::uint64_t pres = 0;     //!< explicit PREs only
    std::uint64_t reads = 0;    //!< including RDA
    std::uint64_t writes = 0;   //!< including WRA
    std::uint64_t autoPres = 0; //!< RDA + WRA
    std::uint64_t refreshes = 0;
    /** ACTs binned by whole-cycle tRCD reduction actually used. */
    std::uint64_t actsByTrcdReduction[16] = {};
    /**
     * ACTs whose requested timing beat the *fault-world* requirement
     * (silent-corruption events).  Only counted when a FaultModel is
     * attached; the nominal-charge panic above stays a panic because
     * it can only mean a controller bug.
     */
    std::uint64_t marginViolations = 0;
};

/** One DDR3 channel: ranks x banks plus the shared command/data bus. */
class DramDevice
{
  public:
    /**
     * @param geometry channel geometry
     * @param tp       timing parameters
     * @param derate   charge model providing ground-truth row timing
     * @param clock    bus clock (for cycle <-> ns conversion)
     */
    DramDevice(const DramGeometry &geometry, const TimingParams &tp,
               const TimingDerate &derate, const Clock &clock = kMemClock);

    /** True when @p cmd may legally issue at @p now. */
    bool canIssue(const Command &cmd, Cycle now) const;

    /**
     * Issue @p cmd at @p now.  Panics if illegal (the controller must
     * check canIssue first) or if an ACT's requested timing is faster
     * than the row's remaining charge allows.
     */
    IssueResult issue(const Command &cmd, Cycle now);

    /** Bank state accessor. */
    const BankState &bank(RankId rank, BankId bank_idx) const;

    /** Rank state accessor. */
    const RankState &rank(RankId rank_idx) const;

    /**
     * Refresh engine of @p rank_idx (PBR reads this).  In all-bank
     * mode this is *the* rank engine; under per-bank refresh it is
     * bank 0's engine — bank-sensitive callers use refreshFor().
     */
    const RefreshEngine &refresh(RankId rank_idx = RankId{0}) const;

    /** The refresh engine owning (@p rank_idx, @p bank_idx)'s rows. */
    const RefreshEngine &refreshFor(RankId rank_idx,
                                    BankId bank_idx) const;

    /** Earliest next refresh deadline across @p rank_idx's engines. */
    Cycle nextRefreshDueAt(RankId rank_idx) const;

    /** True when any rank has a REF / REFsb due at @p now. */
    bool refreshDue(Cycle now) const;

    /** True when any bank's REFsb tRFCpb window covers @p now (the
     *  refresh shadow SARP drains writes into). */
    bool refsbInFlight(Cycle now) const;

    /**
     * The row's true minimum activation timing at @p now, from the
     * charge model.  Exposed for tests and the pb_explorer example.
     */
    RowTiming trueRowTiming(RankId rank, BankId bank, RowId row,
                            Cycle now) const;

    /**
     * Like trueRowTiming, but through the attached FaultModel's view
     * of the world (weak cells, temperature, VRT, disturbed REFs).
     * Falls back to trueRowTiming when no model is attached.
     */
    RowTiming faultedRowTiming(RankId rank, BankId bank, RowId row,
                               Cycle now) const;

    /**
     * Attach the fault world (not owned; must outlive the device).
     * From now on REF restores are routed through the model and every
     * ACT is additionally margin-checked against the faulted truth.
     */
    void attachFaultModel(FaultModel *faults);

    /** The attached fault world, or nullptr. */
    const FaultModel *faultModel() const { return faults_; }

    /** Geometry in use. */
    const DramGeometry &geometry() const { return geom_; }

    /** Timing parameters in use. */
    const TimingParams &timing() const { return tp_; }

    /** The charge derating model in use. */
    const TimingDerate &derate() const { return derate_; }

    /** Command counters. */
    const DeviceCounters &counters() const { return counters_; }

    /**
     * Attach @p obs to the issued-command stream (not owned; must
     * outlive the device).  Observers are notified in attach order for
     * every command that passes the legality gate, before the device
     * applies it — so an auditing observer sees even a command the
     * device itself would reject (e.g. a charge violation) and can
     * record it independently.
     */
    void addObserver(CommandObserver *obs);

  private:
    bool canIssueAct(const Command &cmd, Cycle now) const;
    bool canIssueRef(const Command &cmd, Cycle now) const;
    bool canIssueRefsb(const Command &cmd, Cycle now) const;

    BankState &bankRef(RankId rank, BankId bank_idx);

    DramGeometry geom_;
    TimingParams tp_;
    TimingDerate derate_;
    Clock clock_;
    std::vector<RankState> ranks_;

    Cycle lastCmdAt_ = kNeverCycle; //!< command bus: one cmd per cycle
    Cycle rdIssueOkAt_ = 0;         //!< channel data-bus gate for reads
    Cycle wrIssueOkAt_ = 0;         //!< channel data-bus gate for writes
    RankId lastDataRank_{0};        //!< owner of the last data burst
    Cycle lastDataEndAt_ = 0;       //!< end of the last data burst

    DeviceCounters counters_;
    std::vector<CommandObserver *> observers_;
    FaultModel *faults_ = nullptr; //!< optional fault world (not owned)

    /**
     * Shard confinement (debug-asserted): a device belongs to exactly
     * one thread — the worker running its System, or the serve shard
     * that adopted it after launch.  issue() asserts the owner, so a
     * device reached from two threads panics in debug builds instead
     * of corrupting bank state silently.
     */
    ThreadConfined confined_;
};

} // namespace nuat

#endif // NUAT_DRAM_DRAM_DEVICE_HH
