#include "power_model.hh"

#include "common/logging.hh"

namespace nuat {

DramPowerModel::DramPowerModel(const TimingParams &tp, const Clock &clock,
                               const IddParams &idd)
    : tp_(tp), clock_(clock), idd_(idd)
{
    nuat_assert(idd_.vdd > 0.0);
    nuat_assert(idd_.idd0 > idd_.idd3n && idd_.idd3n >= idd_.idd2n,
                "(inconsistent IDD specification)");
}

double
DramPowerModel::actPreEnergyNj(Cycle trc_cycles) const
{
    // mA * V * ns = pW*s... (1e-3 A)(V)(1e-9 s) = 1e-12 J = 1e-3 nJ.
    return (idd_.idd0 - idd_.idd3n) * idd_.vdd *
           clock_.toNs(trc_cycles).value() * 1e-3;
}

double
DramPowerModel::readEnergyNj() const
{
    return (idd_.idd4r - idd_.idd3n) * idd_.vdd *
           clock_.toNs(tp_.tBL).value() * 1e-3;
}

double
DramPowerModel::writeEnergyNj() const
{
    return (idd_.idd4w - idd_.idd3n) * idd_.vdd *
           clock_.toNs(tp_.tBL).value() * 1e-3;
}

double
DramPowerModel::refreshEnergyNj() const
{
    return (idd_.idd5 - idd_.idd2n) * idd_.vdd *
           clock_.toNs(tp_.tRFC).value() * 1e-3;
}

EnergyBreakdown
DramPowerModel::estimate(const DeviceCounters &counters,
                         Cycle elapsed) const
{
    EnergyBreakdown e;

    // Activations: each bin i of the histogram ran with tRCD reduced
    // by i cycles, i.e. tRC reduced by the matching ladder step
    // (tRAS shrinks twice as fast as tRCD in the Table 4 ladder).
    Nanoseconds act_time{0.0};
    for (Cycle red = 0; red < 16; ++red) {
        const std::uint64_t n = counters.actsByTrcdReduction[red];
        if (n == 0)
            continue;
        // Table 4 ladder: each tRCD cycle shaved comes with two tRAS
        // cycles, and tRC = tRAS + tRP, so tRC shrinks by 2 per step.
        const Cycle trc = tp_.tRC - 2 * red;
        e.actPre += static_cast<double>(n) * actPreEnergyNj(trc);
        act_time += static_cast<double>(n) * clock_.toNs(trc);
    }
    e.deratingSavings =
        static_cast<double>(counters.acts) * actPreEnergyNj(tp_.tRC) -
        e.actPre;

    e.read = static_cast<double>(counters.reads) * readEnergyNj();
    e.write = static_cast<double>(counters.writes) * writeEnergyNj();
    e.refresh =
        static_cast<double>(counters.refreshes) * refreshEnergyNj();

    // Background: active standby while any bank holds a row (bounded
    // by the cumulative activation windows), precharge standby
    // otherwise.
    const Nanoseconds total = clock_.toNs(elapsed);
    const Nanoseconds active = act_time < total ? act_time : total;
    e.background = (idd_.idd3n * active.value() +
                    idd_.idd2n * (total - active).value()) *
                   idd_.vdd * 1e-3;
    return e;
}

} // namespace nuat
