#include "timing_params.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace nuat {

void
TimingParams::validate() const
{
    nuat_assert(tRC == tRAS + tRP, "(tRC %llu != tRAS %llu + tRP %llu)",
                static_cast<unsigned long long>(tRC),
                static_cast<unsigned long long>(tRAS),
                static_cast<unsigned long long>(tRP));
    nuat_assert(tRCD > 0 && tRAS >= tRCD);
    nuat_assert(tBL > 0 && tCCD >= tBL);
    nuat_assert(tCL > 0 && tCWL > 0);
    nuat_assert(tFAW >= tRRD, "(tFAW must cover at least one tRRD)");
    nuat_assert(tCCD_L >= tCCD,
                "(same-group column gap cannot beat the global one)");
    nuat_assert(tRRD_L >= tRRD,
                "(same-group ACT gap cannot beat the global one)");
    nuat_assert(rowsPerRef > 0);
    nuat_assert(tRFC > 0 && tREFI > tRFC,
                "(refresh would saturate the device)");
    nuat_assert(tRFCpb > 0 && tRFCpb <= tRFC,
                "(single-bank refresh cannot outlast all-bank)");
    nuat_assert(tREFI > tRFCpb,
                "(per-bank refresh would saturate the device)");
    // The charge model's refresh-slack guard must cover the furthest a
    // policy may legally postpone a refresh, or an in-window deferral
    // could void the derated-timing safety proof.
    nuat_assert(refPostponeWindow() <= maxRefreshSlack,
                "(postponement window %llu exceeds refresh slack %llu)",
                static_cast<unsigned long long>(refPostponeWindow()),
                static_cast<unsigned long long>(maxRefreshSlack));
}

void
DramGeometry::validate() const
{
    nuat_assert(channels > 0 && ranks > 0 && banks > 0);
    nuat_assert(isPowerOfTwo(channels) && isPowerOfTwo(ranks));
    nuat_assert(isPowerOfTwo(banks));
    nuat_assert(isPowerOfTwo(rows) && isPowerOfTwo(columns));
    nuat_assert(isPowerOfTwo(lineBytes) && isPowerOfTwo(columnBytes));
    nuat_assert(lineBytes >= columnBytes,
                "(cache line smaller than a device column)");
    nuat_assert(columns * columnBytes >= lineBytes,
                "(row smaller than a cache line)");
    nuat_assert(bankGroups > 0 && isPowerOfTwo(bankGroups));
    nuat_assert(banks % bankGroups == 0,
                "(bank groups must partition the banks evenly)");
}

} // namespace nuat
