#include "command.hh"

namespace nuat {

const char *
Command::name() const
{
    switch (type) {
      case CmdType::kAct:
        return "ACT";
      case CmdType::kPre:
        return "PRE";
      case CmdType::kRead:
        return "RD";
      case CmdType::kWrite:
        return "WR";
      case CmdType::kReadAp:
        return "RDA";
      case CmdType::kWriteAp:
        return "WRA";
      case CmdType::kRef:
        return "REF";
      case CmdType::kRefsb:
        return "REFSB";
    }
    return "?";
}

} // namespace nuat
