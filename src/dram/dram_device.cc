#include "dram_device.hh"

#include <algorithm>

#include "common/logging.hh"
#include "fault/fault_model.hh"

namespace nuat {

RankState::RankState(std::uint32_t rows, const TimingParams &tp,
                     const DramGeometry &geom)
{
    banks.resize(geom.banks);
    refsbBusyUntil.assign(geom.banks, 0);
    groupActAllowedAt.assign(geom.bankGroups, 0);
    groupRdIssueOkAt.assign(geom.bankGroups, 0);
    groupWrIssueOkAt.assign(geom.bankGroups, 0);

    if (tp.refreshMode == RefreshMode::kPerBank) {
        // One engine per bank, phase-staggered across the interval so
        // the per-bank deadlines spread out instead of all landing on
        // the same cycle: bank 0 is due first, bank B-1 a full
        // interval in (the all-bank phase).
        const Cycle interval = tp.refInterval();
        const Cycle step = interval / geom.banks;
        engines.reserve(geom.banks);
        for (unsigned b = 0; b < geom.banks; ++b) {
            const Cycle phase =
                interval - static_cast<Cycle>(geom.banks - 1 - b) * step;
            engines.emplace_back(rows, tp, phase);
        }
    } else {
        engines.emplace_back(rows, tp);
    }
}

bool
RankState::fawBlocked(Cycle now, const TimingParams &tp) const
{
    if (actWindow.size() < 4)
        return false;
    // actWindow holds the last 4 ACT times (oldest first): a fifth ACT
    // must wait until the oldest leaves the tFAW window.
    return now < actWindow.front() + tp.tFAW;
}

void
RankState::recordAct(Cycle now, const TimingParams &tp)
{
    actAllowedAt = now + tp.tRRD;
    actWindow.push_back(now);
    if (actWindow.size() > 4)
        actWindow.pop_front();
}

DramDevice::DramDevice(const DramGeometry &geometry, const TimingParams &tp,
                       const TimingDerate &derate, const Clock &clock)
    : geom_(geometry), tp_(tp), derate_(derate), clock_(clock)
{
    geom_.validate();
    tp_.validate();
    nuat_assert(geom_.channels == 1,
                "(DramDevice models one channel; instantiate one per "
                "channel)");
    // The derating model must be based on the same nominal activation
    // timing this device enforces, or ground truth and rated PB timing
    // would disagree about what "nominal" means.
    nuat_assert(derate_.nominal().trcd == tp_.tRCD &&
                    derate_.nominal().tras == tp_.tRAS &&
                    derate_.nominal().trp == tp_.tRP,
                "(charge model nominal timing != device timing)");
    ranks_.reserve(geom_.ranks);
    for (unsigned r = 0; r < geom_.ranks; ++r)
        ranks_.emplace_back(geom_.rows, tp_, geom_);
}

const BankState &
DramDevice::bank(RankId rank, BankId bank_idx) const
{
    nuat_assert(rank.value() < ranks_.size() &&
                bank_idx.value() < geom_.banks);
    return ranks_[rank.value()].banks[bank_idx.value()];
}

BankState &
DramDevice::bankRef(RankId rank, BankId bank_idx)
{
    nuat_assert(rank.value() < ranks_.size() &&
                bank_idx.value() < geom_.banks);
    return ranks_[rank.value()].banks[bank_idx.value()];
}

const RankState &
DramDevice::rank(RankId rank_idx) const
{
    nuat_assert(rank_idx.value() < ranks_.size());
    return ranks_[rank_idx.value()];
}

const RefreshEngine &
DramDevice::refresh(RankId rank_idx) const
{
    nuat_assert(rank_idx.value() < ranks_.size());
    return ranks_[rank_idx.value()].engines.front();
}

const RefreshEngine &
DramDevice::refreshFor(RankId rank_idx, BankId bank_idx) const
{
    nuat_assert(rank_idx.value() < ranks_.size() &&
                bank_idx.value() < geom_.banks);
    return ranks_[rank_idx.value()].engineFor(bank_idx);
}

Cycle
DramDevice::nextRefreshDueAt(RankId rank_idx) const
{
    nuat_assert(rank_idx.value() < ranks_.size());
    Cycle due = kNeverCycle;
    for (const auto &eng : ranks_[rank_idx.value()].engines)
        due = std::min(due, eng.nextDueAt());
    return due;
}

bool
DramDevice::refreshDue(Cycle now) const
{
    for (const auto &r : ranks_) {
        for (const auto &eng : r.engines) {
            if (eng.due(now))
                return true;
        }
    }
    return false;
}

bool
DramDevice::refsbInFlight(Cycle now) const
{
    for (const auto &r : ranks_) {
        for (const Cycle until : r.refsbBusyUntil) {
            if (now < until)
                return true;
        }
    }
    return false;
}

RowTiming
DramDevice::trueRowTiming(RankId rank_idx, BankId bank_idx, RowId row,
                          Cycle now) const
{
    const auto &eng = refreshFor(rank_idx, bank_idx);
    return derate_.effective(eng.elapsedSinceRefresh(row, now, clock_));
}

RowTiming
DramDevice::faultedRowTiming(RankId rank_idx, BankId bank_idx, RowId row,
                             Cycle now) const
{
    if (!faults_)
        return trueRowTiming(rank_idx, bank_idx, row, now);
    // Past the retention period the charge model can promise nothing
    // better than nominal timing, and the sense-amp response is only
    // calibrated up to retention; clamp so heavy leakage multipliers
    // cannot drive it out of domain.  (Whether the data survived that
    // long is a separate question — marginViolations tracks it.)
    Nanoseconds elapsed = faults_->trueElapsed(rank_idx, row, now);
    if (elapsed > derate_.retention())
        elapsed = derate_.retention();
    return derate_.effective(elapsed);
}

void
DramDevice::attachFaultModel(FaultModel *faults)
{
    nuat_assert(faults != nullptr);
    nuat_assert(!faults_, "(attachFaultModel called twice)");
    // The fault world keys its ground truth on (rank, row); per-bank
    // refresh would give the same row id a different refresh time per
    // bank, which that keying cannot express.  ExperimentConfig
    // rejects the combination up front; this is the backstop.
    nuat_assert(tp_.refreshMode == RefreshMode::kAllBank,
                "(fault injection requires all-bank refresh)");
    faults_ = faults;
}

bool
DramDevice::canIssueAct(const Command &cmd, Cycle now) const
{
    const RankState &r = ranks_[cmd.rank.value()];
    const BankState &b = r.banks[cmd.bank.value()];
    const BankGroupId g = geom_.bankGroupOf(cmd.bank);
    return b.isClosed() && now >= b.actAllowedAt() &&
           now >= r.actAllowedAt &&
           now >= r.groupActAllowedAt[g.value()] &&
           now >= r.refBusyUntil &&
           now >= r.refsbBusyUntil[cmd.bank.value()] &&
           !r.fawBlocked(now, tp_);
}

bool
DramDevice::canIssueRef(const Command &cmd, Cycle now) const
{
    if (tp_.refreshMode != RefreshMode::kAllBank)
        return false; // per-bank devices retire refresh via REFsb
    const RankState &r = ranks_[cmd.rank.value()];
    if (now < r.refBusyUntil)
        return false;
    for (const auto &b : r.banks) {
        if (!b.prechargedAt(now))
            return false;
    }
    return true;
}

bool
DramDevice::canIssueRefsb(const Command &cmd, Cycle now) const
{
    if (tp_.refreshMode != RefreshMode::kPerBank)
        return false;
    const RankState &r = ranks_[cmd.rank.value()];
    if (!r.banks[cmd.bank.value()].prechargedAt(now))
        return false;
    if (now < r.refsbBusyUntil[cmd.bank.value()])
        return false;
    // Same-rank spacing between consecutive REFsb commands.
    return r.lastRefsbAt == kNeverCycle ||
           now >= r.lastRefsbAt + tp_.tREFSBRD;
}

bool
DramDevice::canIssue(const Command &cmd, Cycle now) const
{
    nuat_assert(cmd.rank.value() < ranks_.size());
    nuat_assert(cmd.type == CmdType::kRef ||
                cmd.bank.value() < geom_.banks);

    // Command bus: one command per cycle.
    if (lastCmdAt_ != kNeverCycle && now <= lastCmdAt_)
        return false;

    const RankState &r = ranks_[cmd.rank.value()];
    const BankState &b =
        r.banks[cmd.type == CmdType::kRef ? 0 : cmd.bank.value()];
    const BankGroupId g = geom_.bankGroupOf(
        cmd.type == CmdType::kRef ? BankId{0} : cmd.bank);

    switch (cmd.type) {
      case CmdType::kAct:
        return canIssueAct(cmd, now);
      case CmdType::kPre:
        return !b.isClosed() && now >= b.preAllowedAt();
      case CmdType::kRead:
      case CmdType::kReadAp:
        return !b.isClosed() && now >= b.rdAllowedAt() &&
               now >= rdIssueOkAt_ &&
               now >= r.groupRdIssueOkAt[g.value()] &&
               (cmd.rank == lastDataRank_ ||
                now + tp_.tCL >= lastDataEndAt_ + tp_.tRTRS);
      case CmdType::kWrite:
      case CmdType::kWriteAp:
        return !b.isClosed() && now >= b.wrAllowedAt() &&
               now >= wrIssueOkAt_ &&
               now >= r.groupWrIssueOkAt[g.value()] &&
               (cmd.rank == lastDataRank_ ||
                now + tp_.tCWL >= lastDataEndAt_ + tp_.tRTRS);
      case CmdType::kRef:
        return canIssueRef(cmd, now);
      case CmdType::kRefsb:
        return canIssueRefsb(cmd, now);
    }
    return false;
}

void
DramDevice::addObserver(CommandObserver *obs)
{
    nuat_assert(obs != nullptr);
    observers_.push_back(obs);
}

IssueResult
DramDevice::issue(const Command &cmd, Cycle now)
{
    confined_.assertOwned("DramDevice");
    if (!canIssue(cmd, now)) {
        nuat_panic("illegal %s to rank %u bank %u at cycle %llu",
                   cmd.name(), cmd.rank.value(), cmd.bank.value(),
                   static_cast<unsigned long long>(now));
    }
    for (CommandObserver *obs : observers_)
        obs->onCommand(cmd, now);
    lastCmdAt_ = now;

    RankState &r = ranks_[cmd.rank.value()];
    IssueResult result;

    switch (cmd.type) {
      case CmdType::kAct: {
        // Ground truth: the requested timing may not be faster than
        // what the row's remaining charge physically supports.
        const RowTiming min =
            trueRowTiming(cmd.rank, cmd.bank, cmd.row, now);
        if (cmd.actTiming.trcd < min.trcd ||
            cmd.actTiming.tras < min.tras ||
            cmd.actTiming.trc < min.trc) {
            nuat_panic("charge violation: ACT row %u requested "
                       "tRCD/tRAS/tRC %llu/%llu/%llu but charge allows "
                       "only %llu/%llu/%llu",
                       cmd.row.value(),
                       static_cast<unsigned long long>(cmd.actTiming.trcd),
                       static_cast<unsigned long long>(cmd.actTiming.tras),
                       static_cast<unsigned long long>(cmd.actTiming.trc),
                       static_cast<unsigned long long>(min.trcd),
                       static_cast<unsigned long long>(min.tras),
                       static_cast<unsigned long long>(min.trc));
        }
        // Fault world: a request faster than what the *faulted* cell
        // supports is not a controller bug (the controller cannot see
        // injected faults), so it is counted as a silent-corruption
        // event rather than a panic.  The guardband/auditor layers are
        // responsible for driving this count back to rare.
        if (faults_) {
            const RowTiming fmin =
                faultedRowTiming(cmd.rank, cmd.bank, cmd.row, now);
            if (cmd.actTiming.trcd < fmin.trcd ||
                cmd.actTiming.tras < fmin.tras ||
                cmd.actTiming.trc < fmin.trc)
                ++counters_.marginViolations;
        }
        r.banks[cmd.bank.value()].onAct(now, cmd.row, cmd.actTiming);
        r.recordAct(now, tp_);
        r.groupActAllowedAt[geom_.bankGroupOf(cmd.bank).value()] =
            now + tp_.tRRD_L;
        ++counters_.acts;
        const Cycle red = tp_.tRCD - cmd.actTiming.trcd;
        ++counters_.actsByTrcdReduction[red < 16 ? red : 15];
        break;
      }
      case CmdType::kPre:
        r.banks[cmd.bank.value()].onPre(now, tp_);
        ++counters_.pres;
        break;
      case CmdType::kRead:
      case CmdType::kReadAp:
        if (cmd.type == CmdType::kRead) {
            r.banks[cmd.bank.value()].onRead(now, tp_);
        } else {
            r.banks[cmd.bank.value()].onReadAp(now, tp_);
            ++counters_.autoPres;
        }
        ++counters_.reads;
        // Data-bus interleaving: back-to-back reads gap by tCCD
        // (tCCD_L when the next one hits the same bank group); a
        // write after a read must leave the bus turnaround gap.
        rdIssueOkAt_ = std::max(rdIssueOkAt_, now + tp_.tCCD);
        {
            Cycle &gate = r.groupRdIssueOkAt[geom_.bankGroupOf(cmd.bank)
                                                 .value()];
            gate = std::max(gate, now + tp_.tCCD_L);
        }
        wrIssueOkAt_ = std::max(
            wrIssueOkAt_, now + tp_.tCL + tp_.tBL + tp_.tRTW - tp_.tCWL);
        result.dataAt = now + tp_.tCL + tp_.tBL;
        lastDataRank_ = cmd.rank;
        lastDataEndAt_ = result.dataAt;
        break;
      case CmdType::kWrite:
      case CmdType::kWriteAp:
        if (cmd.type == CmdType::kWrite) {
            r.banks[cmd.bank.value()].onWrite(now, tp_);
        } else {
            r.banks[cmd.bank.value()].onWriteAp(now, tp_);
            ++counters_.autoPres;
        }
        ++counters_.writes;
        wrIssueOkAt_ = std::max(wrIssueOkAt_, now + tp_.tCCD);
        {
            Cycle &gate = r.groupWrIssueOkAt[geom_.bankGroupOf(cmd.bank)
                                                 .value()];
            gate = std::max(gate, now + tp_.tCCD_L);
        }
        // A read after a write waits for write data plus tWTR.
        rdIssueOkAt_ = std::max(rdIssueOkAt_,
                                now + tp_.tCWL + tp_.tBL + tp_.tWTR);
        lastDataRank_ = cmd.rank;
        lastDataEndAt_ = now + tp_.tCWL + tp_.tBL;
        break;
      case CmdType::kRef: {
        RefreshEngine &eng = r.engines.front();
        const Cycle due = eng.nextDueAt();
        if (now > due + tp_.maxRefreshSlack) {
            nuat_panic("REF %llu cycles late: PBR rated timing is only "
                       "guaranteed within the refresh-slack guard",
                       static_cast<unsigned long long>(now - due));
        }
        if (now + tp_.refPullInWindow() < due) {
            nuat_panic("REF %llu cycles early: pulled in beyond the "
                       "JEDEC pull-in budget",
                       static_cast<unsigned long long>(due - now));
        }
        if (faults_)
            faults_->onRefresh(cmd.rank, eng.nextRow(), now);
        eng.performRefresh(now);
        r.refBusyUntil = now + tp_.tRFC;
        for (auto &b : r.banks)
            b.onRefresh(r.refBusyUntil);
        ++counters_.refreshes;
        break;
      }
      case CmdType::kRefsb: {
        RefreshEngine &eng = r.engineFor(cmd.bank);
        const Cycle due = eng.nextDueAt();
        if (now > due + tp_.maxRefreshSlack) {
            nuat_panic("REFSB bank %u %llu cycles late: PBR rated "
                       "timing is only guaranteed within the "
                       "refresh-slack guard",
                       cmd.bank.value(),
                       static_cast<unsigned long long>(now - due));
        }
        if (now + tp_.refPullInWindow() < due) {
            nuat_panic("REFSB bank %u %llu cycles early: pulled in "
                       "beyond the JEDEC pull-in budget",
                       cmd.bank.value(),
                       static_cast<unsigned long long>(due - now));
        }
        eng.performRefresh(now);
        r.refsbBusyUntil[cmd.bank.value()] = now + tp_.tRFCpb;
        r.lastRefsbAt = now;
        r.banks[cmd.bank.value()].onRefresh(
            r.refsbBusyUntil[cmd.bank.value()]);
        ++counters_.refreshes;
        break;
      }
    }
    return result;
}

} // namespace nuat
