/**
 * @file
 * Observation hook for the DRAM command stream.
 *
 * The device notifies every attached observer about each command it
 * actually issues (including controller-forced PREs and REFs).
 * Observers are strictly passive: they must not mutate the device, and
 * the device's behaviour is byte-identical with or without them.  The
 * shadow protocol auditor and the command-trace writer are the two
 * in-tree observers.
 */

#ifndef NUAT_DRAM_COMMAND_OBSERVER_HH
#define NUAT_DRAM_COMMAND_OBSERVER_HH

#include "command.hh"
#include "common/types.hh"

namespace nuat {

/** Passive listener on a device's issued-command stream. */
class CommandObserver
{
  public:
    virtual ~CommandObserver() = default;

    /** Called for every command the device issues, in issue order. */
    virtual void onCommand(const Command &cmd, Cycle now) = 0;
};

} // namespace nuat

#endif // NUAT_DRAM_COMMAND_OBSERVER_HH
