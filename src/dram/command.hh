/**
 * @file
 * DRAM command descriptors exchanged between the memory controller and
 * the device model.
 */

#ifndef NUAT_DRAM_COMMAND_HH
#define NUAT_DRAM_COMMAND_HH

#include "charge/timing_derate.hh"
#include "common/types.hh"

namespace nuat {

/** The DDR command types the controller can issue. */
enum class CmdType : std::uint8_t
{
    kAct,     //!< activate (open) a row
    kPre,     //!< precharge (close) the open row
    kRead,    //!< column read, row stays open
    kWrite,   //!< column write, row stays open
    kReadAp,  //!< column read with auto-precharge
    kWriteAp, //!< column write with auto-precharge
    kRef,     //!< all-bank auto refresh
    kRefsb,   //!< same-bank (per-bank) auto refresh, DDR5-style
};

/** True for either refresh flavour. */
constexpr bool
isRefreshCmd(CmdType t)
{
    return t == CmdType::kRef || t == CmdType::kRefsb;
}

/** True for the four column-access command types. */
constexpr bool
isColumnCmd(CmdType t)
{
    return t == CmdType::kRead || t == CmdType::kWrite ||
           t == CmdType::kReadAp || t == CmdType::kWriteAp;
}

/** True for the read flavours. */
constexpr bool
isReadCmd(CmdType t)
{
    return t == CmdType::kRead || t == CmdType::kReadAp;
}

/** True for the auto-precharge flavours. */
constexpr bool
isAutoPre(CmdType t)
{
    return t == CmdType::kReadAp || t == CmdType::kWriteAp;
}

/** One DRAM command. */
struct Command
{
    CmdType type = CmdType::kAct;
    RankId rank{0};
    BankId bank{0};        //!< ignored for kRef; the target for kRefsb
    RowId row = kNoRow;    //!< kAct only
    std::uint32_t col = 0; //!< column commands only (cache-line col)

    /**
     * For kAct: the activation timing the controller intends to run the
     * row at.  A charge-aware controller (NUAT) passes its PB-rated
     * timing; a conventional controller passes the nominal datasheet
     * timing.  The device checks it against the charge-model ground
     * truth and panics if it is faster than physics allows.
     */
    RowTiming actTiming{0, 0, 0};

    /** Short mnemonic, e.g. "ACT" / "RDA". */
    const char *name() const;
};

/** What the device reports back when a command is issued. */
struct IssueResult
{
    /**
     * For reads: the cycle at which the last beat of data has been
     * returned (the request's service-completion time).  0 otherwise.
     */
    Cycle dataAt = 0;
};

} // namespace nuat

#endif // NUAT_DRAM_COMMAND_HH
