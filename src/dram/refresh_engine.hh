/**
 * @file
 * Refresh bookkeeping: the linear refresh row counter NUAT's PBR reads.
 *
 * Every cell must be refreshed once per 64 ms retention period.  The
 * device refreshes rowsPerRef consecutive rows (in every bank of the
 * rank) per REF command, issued every rowsPerRef * tREFI, walking the
 * row address space with a linear counter (the paper's Sec. 5.1
 * simplifying assumption).
 *
 * The engine keeps two views:
 *  - the *schedule* (deadline of the next REF, the counter position) —
 *    this is what a memory controller can legitimately know, and it is
 *    all that PBR uses;
 *  - the *ground truth* (actual refresh cycle of every row) — used only
 *    by the device model to verify that charge-derated activations are
 *    physically safe.
 */

#ifndef NUAT_DRAM_REFRESH_ENGINE_HH
#define NUAT_DRAM_REFRESH_ENGINE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "common/units.hh"
#include "timing_params.hh"

namespace nuat {

/** Per-rank refresh counter, schedule, and ground-truth history. */
class RefreshEngine
{
  public:
    /**
     * @param rows rows per bank
     * @param tp   timing parameters (rowsPerRef, tREFI)
     *
     * Initial state models a steady-state device: row groups were last
     * refreshed at evenly spaced (negative) times, with the counter
     * about to wrap to row 0 — i.e. row 0 is the *oldest* row at cycle
     * 0 and will be refreshed by the first REF.
     */
    RefreshEngine(std::uint32_t rows, const TimingParams &tp);

    /**
     * Like the two-argument constructor, but with the first REF due at
     * @p first_due_at in (0, interval] instead of a full interval in.
     * The steady-state history shifts with the phase (group g was last
     * refreshed at first_due_at - (groups - g) * interval, never in
     * the future), which is how per-bank refresh staggers its banks so
     * their REFsb commands don't all land on the same cycle.  A phase
     * of interval() reproduces the default schedule exactly.
     */
    RefreshEngine(std::uint32_t rows, const TimingParams &tp,
                  Cycle first_due_at);

    /** Deadline of the next REF command [cycle]. */
    Cycle nextDueAt() const { return nextDueAt_; }

    /** True when the next REF's deadline has arrived at @p now. */
    bool due(Cycle now) const { return now >= nextDueAt_; }

    /**
     * Latest cycle the next REF may legally land: the nominal deadline
     * plus the JEDEC postponement window (TimingParams::
     * refPostponeWindow).  Out-of-order policies defer up to here.
     */
    Cycle deadlineAt() const { return nextDueAt_ + postponeWindow_; }

    /**
     * Earliest cycle the next REF may legally land: the nominal
     * deadline minus the pull-in window.  With the default budget of
     * rowsPerRef tREFIs this is exactly the previous deadline, so a
     * bank can run at most one REF ahead of its nominal schedule.
     */
    Cycle earliestIssueAt() const
    {
        return nextDueAt_ > pullInWindow_ ? nextDueAt_ - pullInWindow_
                                          : 0;
    }

    /** True when pulling the next REF forward to @p now is legal. */
    bool canPullIn(Cycle now) const { return now >= earliestIssueAt(); }

    /** First row the next REF will refresh (the counter position). */
    RowId nextRow() const { return RowId{nextRow_}; }

    /**
     * Last-Refreshed-Row-Address: the most recently refreshed row.
     * This is the LRRA of the paper's equation (1).
     */
    RowId lrra() const
    {
        return RowId{(nextRow_ + rows_ - 1) % rows_};
    }

    /**
     * Relative age of @p row in rows: how many row-refresh steps ago it
     * was refreshed.  (LRRA - row) mod #rows; 0 = just refreshed.
     * This is the quantity PBR shifts down to a PRE_PB index.
     */
    std::uint32_t relativeAge(RowId row) const
    {
        return (lrra().value() + rows_ - row.value()) % rows_;
    }

    /** Rows refreshed per REF command. */
    unsigned rowsPerRef() const { return rowsPerRef_; }

    /** Rows per bank. */
    std::uint32_t rows() const { return rows_; }

    /** Interval between REF commands [cycles]. */
    Cycle interval() const { return interval_; }

    /**
     * Perform one REF at @p now: stamps the next rowsPerRef rows as
     * refreshed, advances the counter and the deadline.
     */
    void performRefresh(Cycle now);

    /** Ground truth: the cycle @p row was last refreshed (can be
     *  negative for the synthetic pre-simulation history). */
    std::int64_t lastRefreshAt(RowId row) const;

    /** Ground truth: time elapsed at @p now since @p row's last
     *  refresh, converted through @p clock. */
    Nanoseconds elapsedSinceRefresh(RowId row, Cycle now,
                                    const Clock &clock) const;

    /** Total REF commands performed. */
    std::uint64_t refreshesDone() const { return refreshesDone_; }

    /** REFs performed before their nominal deadline (pull-ins). */
    std::uint64_t pulledIn() const { return pulledIn_; }

    /** REFs performed after their nominal deadline (postponements —
     *  including the few-cycle slips of in-order operation). */
    std::uint64_t postponed() const { return postponed_; }

  private:
    std::uint32_t rows_;
    unsigned rowsPerRef_;
    Cycle interval_;
    Cycle pullInWindow_;
    Cycle postponeWindow_;
    std::uint32_t nextRow_ = 0;
    Cycle nextDueAt_;
    std::uint64_t refreshesDone_ = 0;
    std::uint64_t pulledIn_ = 0;
    std::uint64_t postponed_ = 0;
    std::vector<std::int64_t> lastRefreshAt_;
};

} // namespace nuat

#endif // NUAT_DRAM_REFRESH_ENGINE_HH
