#include "bank_state.hh"

#include <algorithm>

#include "common/logging.hh"

namespace nuat {

void
BankState::onAct(Cycle now, RowId row, const RowTiming &timing)
{
    nuat_assert(isClosed(), "(ACT to a bank with row %u open)",
                openRow_.value());
    nuat_assert(now >= actAllowedAt_);
    nuat_assert(row != kNoRow);
    nuat_assert(timing.trcd > 0 && timing.tras >= timing.trcd &&
                timing.trc > timing.tras);
    openRow_ = row;
    lastActAt_ = now;
    actTiming_ = timing;
    rdAllowedAt_ = now + timing.trcd;
    wrAllowedAt_ = now + timing.trcd;
    preAllowedAt_ = now + timing.tras;
    actAllowedAt_ = now + timing.trc;
}

void
BankState::onRead(Cycle now, const TimingParams &tp)
{
    nuat_assert(!isClosed() && now >= rdAllowedAt_);
    preAllowedAt_ = std::max(preAllowedAt_, now + tp.tRTP);
}

void
BankState::onWrite(Cycle now, const TimingParams &tp)
{
    nuat_assert(!isClosed() && now >= wrAllowedAt_);
    preAllowedAt_ =
        std::max(preAllowedAt_, now + tp.tCWL + tp.tBL + tp.tWR);
}

void
BankState::onPre(Cycle now, const TimingParams &tp)
{
    nuat_assert(!isClosed(), "(PRE to an already closed bank)");
    nuat_assert(now >= preAllowedAt_);
    openRow_ = kNoRow;
    prechargedAt_ = now + tp.tRP;
    actAllowedAt_ = std::max(actAllowedAt_, prechargedAt_);
}

void
BankState::onReadAp(Cycle now, const TimingParams &tp)
{
    nuat_assert(!isClosed() && now >= rdAllowedAt_);
    // The internal precharge starts as soon as both tRTP (from this
    // read) and tRAS (from the activation) are satisfied.
    const Cycle pre_at = std::max(now + tp.tRTP, preAllowedAt_);
    openRow_ = kNoRow;
    prechargedAt_ = pre_at + tp.tRP;
    actAllowedAt_ = std::max(actAllowedAt_, prechargedAt_);
}

void
BankState::onWriteAp(Cycle now, const TimingParams &tp)
{
    nuat_assert(!isClosed() && now >= wrAllowedAt_);
    const Cycle pre_at =
        std::max(now + tp.tCWL + tp.tBL + tp.tWR, preAllowedAt_);
    openRow_ = kNoRow;
    prechargedAt_ = pre_at + tp.tRP;
    actAllowedAt_ = std::max(actAllowedAt_, prechargedAt_);
}

void
BankState::onRefresh(Cycle done_at)
{
    nuat_assert(isClosed(), "(REF with a row open)");
    actAllowedAt_ = std::max(actAllowedAt_, done_at);
}

} // namespace nuat
