#include "refresh_engine.hh"

#include "common/logging.hh"

namespace nuat {

RefreshEngine::RefreshEngine(std::uint32_t rows, const TimingParams &tp)
    : RefreshEngine(rows, tp, tp.refInterval())
{
}

RefreshEngine::RefreshEngine(std::uint32_t rows, const TimingParams &tp,
                             Cycle first_due_at)
    : rows_(rows), rowsPerRef_(tp.rowsPerRef),
      interval_(tp.refInterval()), pullInWindow_(tp.refPullInWindow()),
      postponeWindow_(tp.refPostponeWindow())
{
    nuat_assert(rows_ > 0 && rowsPerRef_ > 0);
    nuat_assert(rows_ % rowsPerRef_ == 0,
                "(rows %u not divisible by rowsPerRef %u)", rows_,
                rowsPerRef_);
    nuat_assert(first_due_at > 0 && first_due_at <= interval_,
                "(refresh phase outside (0, interval])");

    // Steady-state history: with the first REF due at phase d, group g
    // of rowsPerRef rows was last refreshed at d - (G - g) intervals —
    // strictly before cycle 0, evenly spaced, with group G-1 the
    // freshest.  At d == interval this is the classic schedule (last
    // group refreshed exactly at cycle 0).
    const std::uint32_t groups = rows_ / rowsPerRef_;
    lastRefreshAt_.resize(rows_);
    for (std::uint32_t g = 0; g < groups; ++g) {
        const std::int64_t at =
            static_cast<std::int64_t>(first_due_at) -
            static_cast<std::int64_t>(groups - g) *
                static_cast<std::int64_t>(interval_);
        for (unsigned r = 0; r < rowsPerRef_; ++r)
            lastRefreshAt_[g * rowsPerRef_ + r] = at;
    }
    nextRow_ = 0;
    nextDueAt_ = first_due_at;
}

void
RefreshEngine::performRefresh(Cycle now)
{
    for (unsigned r = 0; r < rowsPerRef_; ++r) {
        lastRefreshAt_[(nextRow_ + r) % rows_] =
            static_cast<std::int64_t>(now);
    }
    if (now < nextDueAt_)
        ++pulledIn_;
    else if (now > nextDueAt_)
        ++postponed_;
    nextRow_ = (nextRow_ + rowsPerRef_) % rows_;
    nextDueAt_ += interval_; // absolute schedule: lateness never accrues
    ++refreshesDone_;
}

std::int64_t
RefreshEngine::lastRefreshAt(RowId row) const
{
    nuat_assert(row.value() < rows_);
    return lastRefreshAt_[row.value()];
}

Nanoseconds
RefreshEngine::elapsedSinceRefresh(RowId row, Cycle now,
                                   const Clock &clock) const
{
    const std::int64_t delta =
        static_cast<std::int64_t>(now) - lastRefreshAt(row);
    nuat_assert(delta >= 0, "(row %u refreshed in the future?)",
                row.value());
    return static_cast<double>(delta) * clock.period();
}

} // namespace nuat
