/**
 * @file
 * DDR3 timing parameters and device geometry.
 *
 * All timing values are in memory-bus clock cycles (800 MHz, tCK =
 * 1.25 ns, DDR3-1600).  The activation-related defaults (tRCD 15 ns,
 * tRAS 37.5 ns, tRC 52.5 ns) follow the paper's Table 3 (SK Hynix DDR3
 * datasheet); the rest are standard DDR3-1600 values.
 */

#ifndef NUAT_DRAM_TIMING_PARAMS_HH
#define NUAT_DRAM_TIMING_PARAMS_HH

#include "common/types.hh"

namespace nuat {

/** DDR3 timing constraint set [memory-bus cycles]. */
struct TimingParams
{
    Cycle tRCD = 12; //!< ACT to column command (15 ns)
    Cycle tRAS = 30; //!< ACT to PRE (37.5 ns)
    Cycle tRP = 12;  //!< PRE to ACT (15 ns)
    Cycle tRC = 42;  //!< ACT to ACT, same bank (52.5 ns)

    Cycle tCL = 11;  //!< read column command to first data
    Cycle tCWL = 8;  //!< write column command to first data
    Cycle tBL = 4;   //!< burst length on the bus (BL8, DDR)

    Cycle tCCD = 4;  //!< column command to column command
    Cycle tRRD = 6;  //!< ACT to ACT, different banks (7.5 ns)
    Cycle tFAW = 32; //!< four-activate window (40 ns)

    Cycle tWTR = 6;  //!< write data end to read command (7.5 ns)
    Cycle tRTW = 2;  //!< read-to-write data-bus turnaround gap
    Cycle tRTP = 6;  //!< read command to PRE (7.5 ns)
    Cycle tWR = 12;  //!< write recovery: data end to PRE (15 ns)

    Cycle tRTRS = 2; //!< rank-to-rank data-bus switch penalty

    Cycle tRFC = 128;  //!< refresh cycle time (160 ns, 2 Gb device)
    Cycle tREFI = 6240; //!< per-row refresh interval (7.8 us)

    /** Rows refreshed by one REF command (paper Sec. 4: 8 is common). */
    unsigned rowsPerRef = 8;

    /** Interval between REF commands: rowsPerRef * tREFI. */
    Cycle refInterval() const { return tREFI * rowsPerRef; }

    /**
     * Maximum tolerated lateness of a REF command [cycles].  The PBR
     * rated timings include a refresh-slack guard (TimingDerate's
     * slack_ns, default 1 ms); a controller that lets refresh slip
     * further than this voids that guarantee, so the device panics.
     * 0.5 ms at 1.25 ns/cycle.
     */
    Cycle maxRefreshSlack = 400000;

    /** Sanity-check internal consistency; panics on violation. */
    void validate() const;
};

/** Device geometry (paper Table 3: 1 ch / 1 rank / 8 banks / 8K x 1K). */
struct DramGeometry
{
    unsigned channels = 1;      //!< independent channels
    unsigned ranks = 1;         //!< ranks per channel
    unsigned banks = 8;         //!< banks per rank
    std::uint32_t rows = 8192;  //!< rows per bank
    std::uint32_t columns = 1024; //!< device columns per row
    unsigned lineBytes = 64;    //!< cache-line size
    unsigned columnBytes = 8;   //!< bytes per device column (x64 bus)

    /** Cache lines per row (the column granularity we schedule at). */
    std::uint32_t linesPerRow() const
    {
        return columns * columnBytes / lineBytes;
    }

    /** Total capacity of one channel in bytes. */
    std::uint64_t channelBytes() const
    {
        return static_cast<std::uint64_t>(ranks) * banks * rows *
               columns * columnBytes;
    }

    /** Sanity-check internal consistency; panics on violation. */
    void validate() const;
};

} // namespace nuat

#endif // NUAT_DRAM_TIMING_PARAMS_HH
