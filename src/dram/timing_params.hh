/**
 * @file
 * DRAM timing parameters and device geometry.
 *
 * All timing values are in memory-bus clock cycles.  The *defaults*
 * are the paper's DDR3-1600 device (800 MHz, tCK = 1.25 ns): the
 * activation-related numbers (tRCD 15 ns, tRAS 37.5 ns, tRC 52.5 ns)
 * follow Table 3 (SK Hynix DDR3 datasheet), the rest are standard
 * DDR3-1600 values.  Other generations come from the preset tables in
 * dram_spec.hh; the DDR4/DDR5-only fields below (bank-group timings,
 * per-bank refresh) default to values that make them degenerate on
 * DDR3 — one bank group, tCCD_L == tCCD, all-bank refresh — so a
 * default-constructed TimingParams still *is* the paper's device.
 */

#ifndef NUAT_DRAM_TIMING_PARAMS_HH
#define NUAT_DRAM_TIMING_PARAMS_HH

#include "common/types.hh"

namespace nuat {

/**
 * How the device retires its refresh obligation (DDR5 sec. 4.10):
 * one all-bank REF covering every bank of the rank, or per-bank REFsb
 * commands that refresh a single bank while the others keep serving.
 */
enum class RefreshMode : std::uint8_t
{
    kAllBank, //!< classic REF: rank-wide, tRFC blackout
    kPerBank, //!< REFsb: one bank at a time, tRFCpb each
};

/** DRAM timing constraint set [memory-bus cycles]. */
struct TimingParams
{
    Cycle tRCD = 12; //!< ACT to column command (15 ns)
    Cycle tRAS = 30; //!< ACT to PRE (37.5 ns)
    Cycle tRP = 12;  //!< PRE to ACT (15 ns)
    Cycle tRC = 42;  //!< ACT to ACT, same bank (52.5 ns)

    Cycle tCL = 11;  //!< read column command to first data
    Cycle tCWL = 8;  //!< write column command to first data
    Cycle tBL = 4;   //!< burst length on the bus (BL8, DDR)

    Cycle tCCD = 4;  //!< column command to column command
    Cycle tRRD = 6;  //!< ACT to ACT, different banks (7.5 ns)
    Cycle tFAW = 32; //!< four-activate window (40 ns)

    /**
     * Bank-group-local variants (DDR4/DDR5): a column command or ACT
     * targeting the *same bank group* as its predecessor pays the long
     * gap; cross-group traffic pays only tCCD / tRRD.  DDR3 has no
     * bank groups, so the defaults equal the short timings and the
     * group gate collapses to the global one.
     */
    Cycle tCCD_L = 4; //!< column to column, same bank group
    Cycle tRRD_L = 6; //!< ACT to ACT, same bank group

    Cycle tWTR = 6;  //!< write data end to read command (7.5 ns)
    Cycle tRTW = 2;  //!< read-to-write data-bus turnaround gap
    Cycle tRTP = 6;  //!< read command to PRE (7.5 ns)
    Cycle tWR = 12;  //!< write recovery: data end to PRE (15 ns)

    Cycle tRTRS = 2; //!< rank-to-rank data-bus switch penalty

    Cycle tRFC = 128;  //!< refresh cycle time (160 ns, 2 Gb device)
    Cycle tREFI = 6240; //!< per-row refresh interval (7.8 us)

    /**
     * Per-bank refresh (REFsb) parameters.  tRFCpb is the single-bank
     * refresh cycle time (strictly shorter than the all-bank tRFC);
     * tREFSBRD is the minimum spacing between two REFsb commands to
     * the *same rank* (different banks).  Both are inert in
     * RefreshMode::kAllBank — the DDR3 defaults just keep validate()
     * happy.
     */
    Cycle tRFCpb = 128;  //!< refresh cycle time, one bank (REFsb)
    Cycle tREFSBRD = 0;  //!< REFsb to REFsb, same rank

    /** Refresh command style the device runs in. */
    RefreshMode refreshMode = RefreshMode::kAllBank;

    /** Rows refreshed by one REF command (paper Sec. 4: 8 is common). */
    unsigned rowsPerRef = 8;

    /** Interval between REF commands: rowsPerRef * tREFI. */
    Cycle refInterval() const { return tREFI * rowsPerRef; }

    /**
     * JEDEC refresh flexibility budget, in tREFI units: a refresh
     * command may be postponed up to refPostponeMax x tREFI past its
     * nominal deadline (the "9 x tREFI" bound: the command lands
     * before the ninth tREFI tick after the previous one) and pulled
     * in up to refPullInMax x tREFI before it.  Both sides default to
     * the spec's 8.  Out-of-order refresh policies (RefreshPolicy,
     * mem/refresh_policy.hh) move refreshes only inside this window;
     * in-order operation never consults it.
     */
    unsigned refPostponeMax = 8;
    unsigned refPullInMax = 8;

    /** Latest legal refresh: its deadline plus this [cycles]. */
    Cycle refPostponeWindow() const { return tREFI * refPostponeMax; }

    /** Earliest legal refresh: its deadline minus this [cycles]. */
    Cycle refPullInWindow() const { return tREFI * refPullInMax; }

    /**
     * Maximum tolerated lateness of a REF command [cycles].  The PBR
     * rated timings include a refresh-slack guard (TimingDerate's
     * slack_ns, default 1 ms); a controller that lets refresh slip
     * further than this voids that guarantee, so the device panics.
     * 0.5 ms at 1.25 ns/cycle.
     */
    Cycle maxRefreshSlack = 400000;

    /** Sanity-check internal consistency; panics on violation. */
    void validate() const;
};

/** Device geometry (paper Table 3: 1 ch / 1 rank / 8 banks / 8K x 1K). */
struct DramGeometry
{
    unsigned channels = 1;      //!< independent channels
    unsigned ranks = 1;         //!< ranks per channel
    unsigned banks = 8;         //!< banks per rank
    std::uint32_t rows = 8192;  //!< rows per bank
    std::uint32_t columns = 1024; //!< device columns per row
    unsigned lineBytes = 64;    //!< cache-line size
    unsigned columnBytes = 8;   //!< bytes per device column (x64 bus)

    /**
     * Bank groups per rank (DDR4: 4, DDR5: 8).  DDR3 has none, which
     * the model expresses as a single group spanning every bank.
     */
    unsigned bankGroups = 1;

    /**
     * The bank group @p bank belongs to.  Low bank bits select the
     * group, so mappings that stripe consecutive lines across banks
     * automatically alternate bank groups — the layout JEDEC chose for
     * exactly that reason.
     */
    BankGroupId bankGroupOf(BankId bank) const
    {
        return BankGroupId{bank.value() % bankGroups};
    }

    /** Cache lines per row (the column granularity we schedule at). */
    std::uint32_t linesPerRow() const
    {
        return columns * columnBytes / lineBytes;
    }

    /** Total capacity of one channel in bytes. */
    std::uint64_t channelBytes() const
    {
        return static_cast<std::uint64_t>(ranks) * banks * rows *
               columns * columnBytes;
    }

    /** Sanity-check internal consistency; panics on violation. */
    void validate() const;
};

} // namespace nuat

#endif // NUAT_DRAM_TIMING_PARAMS_HH
