/**
 * @file
 * Data-driven DRAM generation tables.
 *
 * A DramSpec bundles everything that distinguishes one DRAM generation
 * from another — bus clock, CPU:bus clock ratio, geometry (banks, bank
 * groups, rows) and the full timing constraint set, including the
 * per-bank refresh and bank-group parameters DDR3 lacks.  The presets
 * below are plain static tables, not subclasses: selecting a
 * generation at runtime (`--dram-gen ddr4-2400`,
 * `ExperimentConfig::applyDramGen`) copies one table into the config
 * and every layer downstream (device, controller, PBR, auditor,
 * power model) reads the same numbers.
 *
 * The ddr3-1600 preset is field-for-field identical to the
 * default-constructed TimingParams/DramGeometry, which is what keeps
 * the pre-existing DDR3 golden snapshots byte-identical.
 */

#ifndef NUAT_DRAM_DRAM_SPEC_HH
#define NUAT_DRAM_DRAM_SPEC_HH

#include <string_view>

#include "common/units.hh"
#include "timing_params.hh"

namespace nuat {

/** The DRAM generations with a preset table. */
enum class DramGen : std::uint8_t
{
    kDdr3_1600, //!< the paper's Table 3 device (default)
    kDdr4_2400, //!< 1200 MHz bus, 16 banks in 4 groups
    kDdr5_4800, //!< 2400 MHz bus, 32 banks in 8 groups, REFsb default
};

/** Number of DramGen values (for iteration). */
inline constexpr unsigned kNumDramGens = 3;

/**
 * Datasheet anchors [ns] the headline cycle values were derived from.
 * Kept in the table so tests can prove the cycle columns agree with
 * the analog quantities at the preset's own clock — a stale
 * hand-converted constant fails loudly instead of silently shifting a
 * timing by a cycle.
 */
struct SpecNsAnchors
{
    Nanoseconds trcd;  //!< ACT to column command
    Nanoseconds tras;  //!< ACT to PRE
    Nanoseconds trp;   //!< PRE to ACT
    Nanoseconds trfc;  //!< all-bank refresh cycle time
    Nanoseconds trefi; //!< per-row refresh interval
};

/** One DRAM generation: clocking + geometry + timing as data. */
struct DramSpec
{
    const char *name;        //!< CLI spelling, e.g. "ddr4-2400"
    DramGen generation;
    double busMhz;           //!< memory bus clock [MHz]
    unsigned cpuPerMemCycle; //!< whole CPU cycles per bus cycle
    DramGeometry geometry;
    TimingParams timing;
    SpecNsAnchors ns;        //!< datasheet anchors for the cycle values

    /** The bus clock as a Clock (cycle <-> ns conversions). */
    Clock clock() const { return Clock{busMhz}; }

    /** Implied CPU core clock [MHz]. */
    double cpuMhz() const { return busMhz * cpuPerMemCycle; }

    /**
     * Sanity-check the table: geometry/timing validate, the ns anchors
     * reproduce the cycle values at this spec's clock, and one full
     * refresh rotation of the row space lands on the 64 ms retention
     * period (the invariant NUAT's PB slicing is built on).
     */
    void validate() const;

    /** The preset table for @p gen (static storage). */
    static const DramSpec &preset(DramGen gen);

    /** Look up a preset by CLI name; nullptr when unknown. */
    static const DramSpec *byName(std::string_view name);

    /** All presets, in DramGen order (for sweeps and tests). */
    static const DramSpec *allPresets(); //!< kNumDramGens entries
};

/** Display name of @p gen (e.g. "DDR4-2400"; the CLI spelling is the
 *  lowercase preset name). */
const char *dramGenName(DramGen gen);

} // namespace nuat

#endif // NUAT_DRAM_DRAM_SPEC_HH
