/**
 * @file
 * PB explorer: poke at the charge model and Partitioned Bank Rotation
 * directly — no full simulation.
 *
 * Shows (1) the elapsed-time -> effective-timing curve, (2) how a
 * fixed row's PB# rotates as refresh advances (the paper's Fig. 1),
 * and (3) the warning/promising boundary zones around the refresh
 * pointer (Fig. 14).
 */

#include <cstdio>

#include "charge/timing_derate.hh"
#include "core/pbr.hh"
#include "dram/refresh_engine.hh"

using namespace nuat;

int
main()
{
    const CellModel cell;
    const SenseAmpModel sa(cell);
    const TimingDerate derate(sa);
    const NuatConfig cfg = NuatConfig::fromDerate(derate, 5);
    PbrAcquisition pbr(cfg, 8192);
    const TimingParams tp;
    RefreshEngine refresh(8192, tp);

    std::printf("1. Charge decay -> effective row timing "
                "(tRCD/tRAS/tRC at 800 MHz):\n");
    for (double ms : {0.0, 2.0, 6.0, 16.0, 28.0, 44.0, 63.9}) {
        const RowTiming t = derate.effective(Nanoseconds{ms * 1e6});
        std::printf("   %5.1f ms after refresh: %2llu / %2llu / %2llu "
                    "cycles (dV = %5.1f mV)\n",
                    ms, static_cast<unsigned long long>(t.trcd),
                    static_cast<unsigned long long>(t.tras),
                    static_cast<unsigned long long>(t.trc),
                    cell.deltaV(Nanoseconds{ms * 1e6}) * 1e3);
    }

    std::printf("\n2. PB rotation for row 4096 (Fig. 1): the refresh "
                "counter sweeps the bank once per 64 ms;\n   each REF "
                "covers %u rows every %llu cycles.\n",
                refresh.rowsPerRef(),
                static_cast<unsigned long long>(refresh.interval()));
    const RowId row{4096};
    for (int step = 0; step <= 8; ++step) {
        std::printf("   after %4d REFs: relative age %4u rows -> "
                    "PRE_PB %2u -> PB%u (rated tRCD %llu)\n",
                    step * 128, refresh.relativeAge(row),
                    pbr.prePbOf(refresh.relativeAge(row)).value(),
                    pbr.pbOfRow(refresh, row).value(),
                    static_cast<unsigned long long>(
                        pbr.ratedTiming(pbr.pbOfRow(refresh, row))
                            .trcd));
        for (int i = 0; i < 128; ++i)
            refresh.performRefresh(refresh.nextDueAt());
    }

    std::printf("\n3. Boundary zones near the refresh pointer "
                "(Fig. 14; W = warning, P = promising, . = interior):"
                "\n   ");
    for (std::uint32_t age = 760; age < 784; ++age) {
        const RowId r{(refresh.lrra().value() + refresh.rows() - age) %
                      refresh.rows()};
        switch (pbr.zoneOfRow(refresh, r)) {
          case BoundaryZone::kWarning:
            std::printf("W");
            break;
          case BoundaryZone::kPromising:
            std::printf("P");
            break;
          case BoundaryZone::kNone:
            std::printf(".");
            break;
        }
    }
    std::printf("  <- ages 760..783 around the PB0|PB1 boundary "
                "(768)\n");
    std::printf("   A warning-zone ACT gets +w5 (hurry: the row is "
                "about to get slower); a promising-zone ACT gets -w5 "
                "(defer: refresh is about to make it fast again).\n");
    return 0;
}
