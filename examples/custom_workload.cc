/**
 * @file
 * Custom workload: define your own statistical profile, run it under
 * all schedulers, and (optionally) export the synthesized trace to a
 * USIMM-style text file.
 *
 *   ./custom_workload [trace-out.txt]
 */

#include <cstdio>

#include "sim/report.hh"
#include "sim/runner.hh"
#include "trace/synthetic_trace.hh"
#include "trace/trace_file.hh"
#include "trace/trace_stats.hh"

using namespace nuat;

int
main(int argc, char **argv)
{
    // A pointer-chasing, write-heavy workload that none of the MSC
    // profiles covers: low locality, high dependence, modest bursts.
    WorkloadProfile profile;
    profile.name = "my-graph-walk";
    profile.avgGap = 6.0;
    profile.readFraction = 0.55;
    profile.rowLocality = 0.2;
    profile.burstLen = 10.0;
    profile.interBurstGap = 120.0;
    profile.pageReuse = 0.05;
    profile.footprintRows = 8192;
    profile.depFraction = 0.5;

    ExperimentConfig cfg;
    cfg.workloads = {profile.name};
    cfg.customProfiles = {profile};
    cfg.memOpsPerCore = 40000;

    std::printf("%s\n", describeConfig(cfg).c_str());

    // Verify the generator delivers what the profile promises.
    {
        SyntheticTrace probe(profile, cfg.geometry, cfg.seed, 20000);
        std::printf("measured trace properties: %s\n\n",
                    formatTraceStats(
                        analyzeTrace(probe, cfg.geometry, 20000))
                        .c_str());
    }

    const auto results = runSchedulerSweep(
        cfg, {SchedulerKind::kFrFcfsOpen, SchedulerKind::kFrFcfsClose,
              SchedulerKind::kNuat});
    std::printf("%s\n", compareRuns(results).c_str());
    std::printf("NUAT vs best baseline: %+.1f%% read latency\n",
                percentReduction(
                    std::min(results[0].avgReadLatency(),
                             results[1].avgReadLatency()),
                    results[2].avgReadLatency()));

    if (argc > 1) {
        SyntheticTrace trace(profile, cfg.geometry, cfg.seed, 10000);
        const auto n = writeTraceFile(argv[1], trace, 10000);
        std::printf("wrote %llu records to %s (USIMM-style text "
                    "format)\n",
                    static_cast<unsigned long long>(n), argv[1]);
    } else {
        std::printf("(pass a filename to export the synthesized trace)"
                    "\n");
    }
    return 0;
}
