/**
 * @file
 * Scheduler shootout: run the same workload (same synthesized trace)
 * under FCFS, FR-FCFS open/close, and NUAT, and compare.
 *
 *   ./scheduler_shootout [workload] [memops]
 */

#include <cstdio>
#include <cstdlib>

#include "sim/report.hh"
#include "sim/runner.hh"

using namespace nuat;

int
main(int argc, char **argv)
{
    ExperimentConfig cfg;
    cfg.workloads = {argc > 1 ? argv[1] : "mummer"};
    cfg.memOpsPerCore =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 50000;

    std::printf("%s\n", describeConfig(cfg).c_str());

    const auto results = runSchedulerSweep(
        cfg, {SchedulerKind::kFcfs, SchedulerKind::kFrFcfsOpen,
              SchedulerKind::kFrFcfsClose, SchedulerKind::kNuat});
    std::printf("%s\n", compareRuns(results).c_str());

    const double open = results[1].avgReadLatency();
    const double close = results[2].avgReadLatency();
    const double nuat = results[3].avgReadLatency();
    std::printf("NUAT read-latency reduction: %+.1f%% vs FR-FCFS(open), "
                "%+.1f%% vs FR-FCFS(close)\n",
                percentReduction(open, nuat),
                percentReduction(close, nuat));
    std::printf("NUAT execution-time reduction: %+.1f%% vs open, "
                "%+.1f%% vs close\n",
                percentReduction(
                    static_cast<double>(results[1].executionTime()),
                    static_cast<double>(results[3].executionTime())),
                percentReduction(
                    static_cast<double>(results[2].executionTime()),
                    static_cast<double>(results[3].executionTime())));
    return 0;
}
