/**
 * @file
 * Quickstart: simulate one workload under the NUAT memory controller
 * and print what happened.
 *
 *   ./quickstart [workload] [memops]
 *
 * Workload names are the 18 MSC names (comm1..5, leslie, libq, black,
 * face, ferret, fluid, freq, stream, swapt, MT-canneal, MT-fluid,
 * mummer, tigr).
 */

#include <cstdio>
#include <cstdlib>

#include "sim/report.hh"
#include "sim/runner.hh"

using namespace nuat;

int
main(int argc, char **argv)
{
    ExperimentConfig cfg;
    cfg.workloads = {argc > 1 ? argv[1] : "ferret"};
    cfg.memOpsPerCore =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 50000;
    cfg.scheduler = SchedulerKind::kNuat;

    std::printf("%s\n", describeConfig(cfg).c_str());

    const RunResult r = runExperiment(cfg);
    std::printf("%s\n", summarizeRun(r).c_str());

    std::printf("DRAM command mix: %llu ACT, %llu RD, %llu WR, "
                "%llu PRE, %llu auto-PRE, %llu REF\n",
                static_cast<unsigned long long>(r.dev.acts),
                static_cast<unsigned long long>(r.dev.reads),
                static_cast<unsigned long long>(r.dev.writes),
                static_cast<unsigned long long>(r.dev.pres),
                static_cast<unsigned long long>(r.dev.autoPres),
                static_cast<unsigned long long>(r.dev.refreshes));

    std::printf("NUAT activations by partitioned bank (PB0 = fastest):"
                "\n");
    for (unsigned pb = 0; pb < 5; ++pb) {
        std::printf("  PB%u: %8llu ACTs (tRCD %u cycles)\n", pb,
                    static_cast<unsigned long long>(r.actsPerPb[pb]),
                    8 + pb);
    }
    std::printf("PPM page-mode decisions: %llu open, %llu close\n",
                static_cast<unsigned long long>(r.ppmOpen),
                static_cast<unsigned long long>(r.ppmClose));
    std::printf("\nEvery one of those derated ACTs was validated "
                "against the charge model: a controller bug would have "
                "aborted this run.\n");
    return 0;
}
